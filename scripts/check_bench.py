#!/usr/bin/env python
"""Validate every committed BENCH_*.json against one shared schema.

The benchmark harnesses each write a headline-results document to the
repository root (``BENCH_broker.json``, ``BENCH_simulator.json``, ...).
Reviewers read these files, CHANGES.md cites them, and nothing checked
their shape until now — a harness edit could silently drop the key a
claim rests on.  This checker is the CI gate: every document must

- be canonical JSON (sorted keys, the ``atomic_write_json`` format),
- carry a ``kind`` tag matching its filename
  (``BENCH_simulator.json`` -> ``bench-simulator``),
- contain that kind's required keys with the right types, and
- satisfy basic sanity bounds (speedups positive, timings
  non-negative, byte-identity flags actually true).

Run:  python scripts/check_bench.py        (exit 0 clean, 1 findings)
"""

from __future__ import annotations

import json
import pathlib
import sys
from typing import Any, Dict, List, Tuple

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

#: kind -> {key: expected type(s)}.  ``float`` accepts int (JSON has one
#: number type); extra keys are allowed — the schema pins the floor a
#: document must not sink below, not a ceiling.
SCHEMAS: Dict[str, Dict[str, Any]] = {
    "bench-broker": {
        "jobs": int,
        "error_window": (int, float),
        "policies": dict,
    },
    "bench-parallel": {
        "byte_identical": bool,
        "campaign": str,
        "entries": int,
        "workers": int,
        "serial_s": (int, float),
        "parallel_s": (int, float),
        "speedup": (int, float),
    },
    "bench-resilience": {
        "jobs": int,
        "seeds": list,
        "campaigns": dict,
    },
    "bench-service": {
        "requests": int,
        "seeds": list,
        "scenarios": dict,
    },
    "bench-simulator": {
        "events": int,
        "seed": int,
        "reference_drain_s": (int, float),
        "optimized_drain_s": (int, float),
        "speedup": (int, float),
        "byte_identical_order": bool,
    },
    "bench-throughput": {
        "jobs": int,
        "seed": int,
        "trace": str,
        "trace_fingerprint": str,
        "policies": dict,
    },
}

#: Keys that, wherever they appear at top level, must satisfy a bound.
BOUNDS = {
    "speedup": lambda v: v > 0,
    "serial_s": lambda v: v >= 0,
    "parallel_s": lambda v: v >= 0,
    "reference_drain_s": lambda v: v >= 0,
    "optimized_drain_s": lambda v: v >= 0,
    "byte_identical": lambda v: v is True,
    "byte_identical_order": lambda v: v is True,
}


def check_document(path: pathlib.Path) -> List[str]:
    """All schema violations for one BENCH file (empty list = clean)."""
    problems: List[str] = []
    raw = path.read_text(encoding="utf-8")
    try:
        doc = json.loads(raw)
    except json.JSONDecodeError as exc:
        return [f"{path.name}: not valid JSON ({exc})"]
    if not isinstance(doc, dict):
        return [f"{path.name}: top level must be an object"]

    canonical = json.dumps(doc, indent=2, sort_keys=True) + "\n"
    if raw != canonical:
        problems.append(
            f"{path.name}: not canonical JSON — rewrite through "
            "repro.core.durable.atomic_write_json"
        )

    kind = doc.get("kind")
    expected_kind = "bench-" + path.stem[len("BENCH_"):]
    if kind != expected_kind:
        problems.append(
            f"{path.name}: kind is {kind!r}, expected {expected_kind!r}"
        )
        return problems

    schema = SCHEMAS.get(kind)
    if schema is None:
        problems.append(
            f"{path.name}: kind {kind!r} has no schema — add it to "
            "scripts/check_bench.py alongside the new harness"
        )
        return problems

    for key, types in schema.items():
        if key not in doc:
            problems.append(f"{path.name}: missing required key '{key}'")
        elif not isinstance(doc[key], types) or isinstance(doc[key], bool) != (
            types is bool
        ):
            problems.append(
                f"{path.name}: key '{key}' is "
                f"{type(doc[key]).__name__}, expected "
                f"{types.__name__ if isinstance(types, type) else types}"
            )

    for key, ok in BOUNDS.items():
        if key in doc and key in schema and not ok(doc[key]):
            problems.append(
                f"{path.name}: key '{key}' = {doc[key]!r} fails its "
                "sanity bound"
            )
    return problems


def check_all(root: pathlib.Path) -> Tuple[int, List[str]]:
    """(documents checked, problems) over every BENCH_*.json in root."""
    problems: List[str] = []
    paths = sorted(root.glob("BENCH_*.json"))
    for path in paths:
        problems.extend(check_document(path))
    missing = set(SCHEMAS) - {
        "bench-" + p.stem[len("BENCH_"):] for p in paths
    }
    for kind in sorted(missing):
        problems.append(
            f"BENCH_{kind[len('bench-'):]}.json: missing — the schema "
            "lists it as a committed artifact"
        )
    return len(paths), problems


def main() -> int:
    checked, problems = check_all(REPO_ROOT)
    for problem in problems:
        print(f"check_bench: {problem}")
    if problems:
        print(
            f"check_bench: {len(problems)} problem(s) across "
            f"{checked} document(s)"
        )
        return 1
    print(f"check_bench: {checked} BENCH document(s) conform")
    return 0


if __name__ == "__main__":
    sys.exit(main())
