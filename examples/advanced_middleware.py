#!/usr/bin/env python
"""Advanced middleware features: SMP nodes, non-local caching, tree gather.

Demonstrates the three middleware extensions beyond the paper's evaluated
configuration space:

1. **Cluster-of-SMPs execution** (a stated FREERIDE-G feature) — the
   dual-processor Opteron nodes run two reduction threads each, halving
   the number of gathered reduction objects at the cost of memory-bus
   contention.
2. **Non-local caching** (the middleware role the paper lists but leaves
   unimplemented) — a multi-pass run whose compute nodes have no local
   storage caches chunks at a remote site, with the cache-site selector
   choosing the cheapest option.
3. **Tree gather** (ablation) — replacing the serialized master gather by
   a binomial tree.

Run:  python examples/advanced_middleware.py
"""

from repro.core import (
    CacheSiteOption,
    GlobalReductionModel,
    ModelClasses,
    PredictionTarget,
    Profile,
    select_cache_site,
)
from repro.middleware import FreerideGRuntime, GatherTopology
from repro.workloads import make_run_config, opteron_infiniband_cluster
from repro.workloads.registry import WORKLOADS


def show(label, breakdown) -> None:
    print(f"  {label:34s} total {breakdown.total:.4f}s "
          f"(compute {breakdown.t_compute:.4f}, T_ro {breakdown.t_ro:.5f})")


def main() -> None:
    spec = WORKLOADS["em"]
    dataset = spec.make_dataset("350 MB")
    opteron = opteron_infiniband_cluster()

    # ------------------------------------------------------------------
    # 1. SMP: equal slots, different shapes.
    # ------------------------------------------------------------------
    print("cluster-of-SMPs execution (EM, 16 total slots):")
    flat = make_run_config(2, 16, storage_cluster=opteron)
    smp = make_run_config(2, 8, storage_cluster=opteron).with_processes_per_node(2)
    run_flat = FreerideGRuntime(flat).execute(spec.make_app(), dataset)
    run_smp = FreerideGRuntime(smp).execute(spec.make_app(), dataset)
    show("16 nodes x 1 process", run_flat.breakdown)
    show("8 nodes x 2 processes", run_smp.breakdown)
    print("  (half the gather messages; kernel pays memory contention)")

    # ------------------------------------------------------------------
    # 2. Non-local caching with profile-driven site selection.
    # ------------------------------------------------------------------
    print("\nnon-local cache-site selection (EM is multi-pass):")
    profile_config = make_run_config(1, 1, storage_cluster=opteron)
    profile_run = FreerideGRuntime(profile_config).execute(
        spec.make_app(), dataset
    )
    profile = Profile.from_run(profile_config, profile_run.breakdown)
    model = GlobalReductionModel(
        ModelClasses.parse(spec.natural_object_class, spec.natural_global_class)
    )
    target_config = make_run_config(2, 4, storage_cluster=opteron)
    target = PredictionTarget(config=target_config, dataset_bytes=dataset.nbytes)
    options = [
        CacheSiteOption("local-disk", None),
        CacheSiteOption("rack-neighbour", 5.0e7),
        CacheSiteOption("campus-store", 2.0e6),
        CacheSiteOption("remote-archive", 1.0e5),
    ]
    plans = select_cache_site(profile, target, model, options)
    for plan in plans:
        print(f"  {plan.option.site:16s} estimated {plan.estimated_total:.4f}s")
    best = plans[0].option
    config = (
        target_config.with_remote_cache(best.bandwidth)
        if not best.is_local
        else target_config
    )
    actual = FreerideGRuntime(config).execute(spec.make_app(), dataset)
    print(f"  selected '{best.site}': actual {actual.breakdown.total:.4f}s")

    # ------------------------------------------------------------------
    # 3. Serial vs tree gather at 16 nodes.
    # ------------------------------------------------------------------
    print("\ngather topology at 2-16 (EM):")
    serial = make_run_config(2, 16, storage_cluster=opteron)
    tree = serial.with_gather_topology(GatherTopology.TREE)
    run_serial = FreerideGRuntime(serial).execute(spec.make_app(), dataset)
    run_tree = FreerideGRuntime(tree).execute(spec.make_app(), dataset)
    show("serialized master gather", run_serial.breakdown)
    show("binomial-tree gather", run_tree.breakdown)


if __name__ == "__main__":
    main()
