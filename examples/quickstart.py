#!/usr/bin/env python
"""Quickstart: profile once, predict everywhere.

Runs the k-means workload once on the 1-1 base configuration of the
simulated Pentium/Myrinet cluster to collect a profile, then predicts the
execution time of several other (data nodes, compute nodes) configurations
with the paper's three model levels — and validates each prediction
against an actual (simulated) execution.

Run:  python examples/quickstart.py
"""

from repro.core import (
    GlobalReductionModel,
    ModelClasses,
    NoCommunicationModel,
    PredictionTarget,
    Profile,
    ReductionCommunicationModel,
    relative_error,
)
from repro.middleware import FreerideGRuntime
from repro.workloads import make_app, make_dataset, make_run_config


def main() -> None:
    # ------------------------------------------------------------------
    # 1. One profile run: k-means on 1 data node, 1 compute node.
    # ------------------------------------------------------------------
    dataset = make_dataset("kmeans")  # the paper's 1.4 GB point dataset
    profile_config = make_run_config(data_nodes=1, compute_nodes=1)
    profile_run = FreerideGRuntime(profile_config).execute(
        make_app("kmeans"), dataset
    )
    profile = Profile.from_run(profile_config, profile_run.breakdown)

    print("profile run (1-1):")
    print(f"  T_disk    = {profile.t_disk:8.3f} s")
    print(f"  T_network = {profile.t_network:8.3f} s")
    print(f"  T_compute = {profile.t_compute:8.3f} s "
          f"(T_ro = {profile.t_ro:.4f}, T_g = {profile.t_g:.4f})")
    print(f"  total     = {profile.total:8.3f} s")
    print(f"  reduction object: {profile.max_object_bytes:.0f} bytes, "
          f"{profile.gather_rounds} gather rounds")

    # ------------------------------------------------------------------
    # 2. Predict other configurations from that single profile.
    # ------------------------------------------------------------------
    classes = ModelClasses.parse("constant", "linear-constant")  # k-means
    models = [
        NoCommunicationModel(),
        ReductionCommunicationModel(classes),
        GlobalReductionModel(classes),
    ]

    print("\npredictions vs actual executions:")
    header = f"{'config':>8} {'actual':>9}"
    for model in models:
        header += f" | {model.label:>24}"
    print(header)
    for n, c in [(1, 4), (2, 8), (4, 8), (8, 16)]:
        config = make_run_config(n, c)
        actual = FreerideGRuntime(config).execute(make_app("kmeans"), dataset)
        target = PredictionTarget(config=config, dataset_bytes=dataset.nbytes)
        line = f"{config.label:>8} {actual.breakdown.total:8.3f}s"
        for model in models:
            predicted = model.predict(profile, target)
            err = relative_error(actual.breakdown.total, predicted.total)
            line += f" | {predicted.total:8.3f}s ({100 * err:5.2f}%)"
        print(line)

    print("\nThe global-reduction model should be the most accurate column —")
    print("that is the paper's headline result.")


if __name__ == "__main__":
    main()
