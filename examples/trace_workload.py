#!/usr/bin/env python
"""Trace-realistic workloads: GWA-shaped streams on the reference grid.

The ``gwa-mixed`` preset models three virtual organisations the way the
Grid Workload Archive traces look: a bulk-production VO on Weibull
interarrivals, an analysis VO on lognormal gaps, and a bursty
biomedical VO on Pareto gaps with deadlines — all under day/week
modulation.  The seeded spec expands deterministically into a
fingerprinted :class:`TraceWorkload` artifact, round-trips through the
Grid Workload Archive ``.gwf`` text format, and feeds the broker's
indexed engine at trace scale.

The same flow is available from the command line::

    repro trace generate gwa-mixed --count 5000 -o my.trace.json
    repro trace run my.trace.json --policy min-cost

Run:  python examples/trace_workload.py
"""

from repro.analysis import format_broker, format_trace
from repro.broker import GridBroker
from repro.workloads.traces import (
    REFERENCE_ALLOCATIONS,
    TraceWorkload,
    make_preset,
    parse_gwf,
    reference_grid,
    trace_to_gwf,
)

COUNT = 1500


def main() -> None:
    broker = GridBroker(reference_grid(), REFERENCE_ALLOCATIONS)

    print("expanding the seeded gwa-mixed trace spec...")
    spec = make_preset("gwa-mixed", COUNT, seed=17)
    trace = TraceWorkload.from_spec(
        spec, baselines=broker.baseline_estimate
    )
    print(format_trace(trace))

    print("\nround-tripping through the Grid Workload Archive format...")
    text = trace_to_gwf(trace)
    back = parse_gwf(text, name=trace.name)
    exact = back.jobs == trace.jobs
    lines = text.count("\n")
    print(f"  {lines} GWF lines -> parsed back "
          f"{'exactly' if exact else 'WITH DRIFT'} "
          f"(fingerprint {back.fingerprint[:16]})")

    print("\nscheduling the trace on the reference grid "
          "(indexed engine)...\n")
    report = broker.compare(
        trace.name,
        list(trace.jobs),
        ["min-completion", "min-cost", "deadline-aware"],
        include_uncalibrated=False,
    )
    print(format_broker(report))

    stats = broker.last_queue_stats
    print(f"\nqueue pressure: {stats.get('events', 0)} events, "
          f"peak event-queue depth {stats.get('peak_event_queue_depth', 0)}, "
          f"peak pending depth {stats.get('peak_pending_depth', 0)}")


if __name__ == "__main__":
    main()
