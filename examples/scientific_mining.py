#!/usr/bin/env python
"""The two scientific feature-mining workloads, end to end.

Runs vortex detection on a synthetic CFD velocity field and molecular
defect detection on a synthetic Si lattice — the paper's Sections 4.4-4.5
applications — on a parallel configuration, and shows that the features
found match the planted ground truth while the middleware reports the
execution-time breakdown the prediction framework consumes.

Run:  python examples/scientific_mining.py
"""

from repro.middleware import FreerideGRuntime
from repro.workloads import make_app, make_dataset, make_run_config


def show_breakdown(label, breakdown) -> None:
    print(f"  {label}: total {breakdown.total:.3f}s = "
          f"disk {breakdown.t_disk:.3f} + net {breakdown.t_network:.3f} + "
          f"compute {breakdown.t_compute:.3f} "
          f"(T_ro {breakdown.t_ro:.4f}, T_g {breakdown.t_g:.4f})")


def main() -> None:
    config = make_run_config(data_nodes=4, compute_nodes=8)

    # ------------------------------------------------------------------
    # Vortex detection on CFD output (the paper's 710 MB dataset).
    # ------------------------------------------------------------------
    field = make_dataset("vortex")
    run = FreerideGRuntime(config).execute(make_app("vortex"), field)
    truth = field.meta["true_vortices"]
    print(f"vortex detection on a {field.shape[0]}x{field.shape[1]} velocity "
          f"field split into {field.num_chunks} row-block chunks:")
    print(f"  planted vortices: {len(truth)}, detected: {run.result['count']}")
    strongest = run.result["vortices"][0]
    print(f"  strongest region: rows {strongest['ymin']}-{strongest['ymax']}, "
          f"cols {strongest['xmin']}-{strongest['xmax']}, "
          f"area {strongest['area']}, "
          f"{'counter-clockwise' if strongest['sign'] > 0 else 'clockwise'}")
    joined = sum(1 for v in run.result["vortices"] if v["num_fragments"] > 1)
    print(f"  regions joined across partition boundaries: {joined}")
    show_breakdown("breakdown", run.breakdown)

    # ------------------------------------------------------------------
    # Molecular defect detection (the paper's 130 MB lattice).
    # ------------------------------------------------------------------
    lattice = make_dataset("defect")
    run = FreerideGRuntime(config).execute(make_app("defect"), lattice)
    truth = lattice.meta["true_defects"]
    nz, ny, nx = lattice.shape
    print(f"\ndefect detection on a {nz}x{ny}x{nx} Si lattice split into "
          f"{lattice.num_chunks} z-slab chunks:")
    print(f"  planted defects: {len(truth)}, detected: {run.result['count']}")
    print(f"  defect catalog grew to {run.result['catalog_size']} classes "
          f"(seeded with 2; new shapes were discovered and broadcast)")
    by_class: dict = {}
    for defect in run.result["defects"]:
        by_class[defect["class_id"]] = by_class.get(defect["class_id"], 0) + 1
    print(f"  population by class id: {dict(sorted(by_class.items()))}")
    show_breakdown("breakdown", run.breakdown)


if __name__ == "__main__":
    main()
