#!/usr/bin/env python
"""Closing the loop: prediction-driven job scheduling on a grid.

The paper's opening motivation — "for a middleware to perform resource
allocation, prediction models are needed" — made concrete: a batch of
mixed data-mining jobs is scheduled on a capacity-limited two-site grid,
once with the prediction framework choosing each job's (replica,
configuration) pair, and once with prediction-free baselines.  Every
placement is executed for real on the simulated middleware.

Run:  python examples/grid_scheduling.py
"""

from repro.core import (
    GlobalReductionModel,
    GridScheduler,
    Job,
    ModelClasses,
    Profile,
    max_parallelism_policy,
    predicted_best_policy,
    random_policy,
)
from repro.middleware import FreerideGRuntime, ReplicaCatalog
from repro.simgrid.topology import GridTopology, SiteKind
from repro.workloads.clusters import pentium_myrinet_cluster
from repro.workloads.configs import make_run_config
from repro.workloads.registry import WORKLOADS

SMALL_SIZE = {"knn": "350 MB", "vortex": "710 MB", "defect": "130 MB",
              "kmeans": "350 MB", "em": "350 MB"}
JOB_MIX = ["knn", "vortex", "defect", "kmeans", "knn", "defect", "vortex"]


def main() -> None:
    cluster = pentium_myrinet_cluster(num_nodes=16)
    topo = GridTopology()
    topo.add_site("repo", SiteKind.REPOSITORY, cluster)
    topo.add_site("hpc-a", SiteKind.COMPUTE, cluster)
    topo.add_site("hpc-b", SiteKind.COMPUTE,
                  pentium_myrinet_cluster(num_nodes=8))
    topo.connect("repo", "hpc-a", bw=2.0e6)
    topo.connect("repo", "hpc-b", bw=5.0e5)  # thin link to the second site
    catalog = ReplicaCatalog(topo)

    print("profiling each job once on 1-1 (the framework's only input)...")
    jobs = []
    for i, name in enumerate(JOB_MIX):
        spec = WORKLOADS[name]
        dataset = spec.make_dataset(SMALL_SIZE[name])
        dataset.name = f"{dataset.name}-job{i}"
        catalog.add(dataset.name, "repo")
        config = make_run_config(1, 1)
        run = FreerideGRuntime(config).execute(spec.make_app(), dataset)
        jobs.append(
            Job(
                job_id=f"job{i}-{name}",
                workload=name,
                dataset=dataset,
                app_factory=spec.make_app,
                profile=Profile.from_run(config, run.breakdown),
            )
        )

    scheduler = GridScheduler(
        topology=topo,
        catalog=catalog,
        model=GlobalReductionModel(
            ModelClasses.parse("constant", "linear-constant")
        ),
        allocations=[(1, 2), (2, 4), (4, 8)],
    )

    print("\nscheduling with the prediction framework:")
    best = scheduler.schedule(jobs, predicted_best_policy)
    for p in best.placements:
        print(f"  {p.label:46s} [{p.start:6.3f}s .. {p.end:6.3f}s] "
              f"predicted {p.predicted:.3f}s")

    grabby = scheduler.schedule(jobs, max_parallelism_policy)
    rand = scheduler.schedule(jobs, random_policy(seed=7))

    print("\npolicy comparison:")
    print(f"  {'policy':>18} {'makespan':>9} {'mean turnaround':>16}")
    for label, schedule in [
        ("predicted best", best),
        ("max parallelism", grabby),
        ("random", rand),
    ]:
        print(f"  {label:>18} {schedule.makespan:8.3f}s "
              f"{schedule.mean_turnaround:15.3f}s")


if __name__ == "__main__":
    main()
