#!/usr/bin/env python
"""Obtaining b̂: wide-area bandwidth forecasting for the network predictor.

The paper's T̂_network formula needs the bandwidth of the *target* data
movement (Section 3.2 points to wide-area bandwidth prediction work for
it).  This example synthesizes a shared-WAN bandwidth trace with diurnal
load and congestion episodes, runs the NWS-style forecaster family over
it, and shows how each forecaster's b̂ propagates into the predicted
network time for a kNN transfer.

Run:  python examples/bandwidth_forecasting.py
"""

from repro.core import Profile
from repro.core.bandwidth import (
    AdaptivePredictor,
    BandwidthTrace,
    EWMAPredictor,
    LastValuePredictor,
    RunningMeanPredictor,
    SlidingMedianPredictor,
    evaluate_predictors,
)
from repro.core.predictors import predict_network_time
from repro.core.target import PredictionTarget
from repro.middleware import FreerideGRuntime
from repro.workloads.configs import make_run_config
from repro.workloads.registry import WORKLOADS


def main() -> None:
    base_bw = 1.0e6
    trace = BandwidthTrace.synthesize(
        300, base_bw=base_bw, congestion_prob=0.05, seed=23
    )
    print(f"synthetic WAN trace: {len(trace)} observations, "
          f"min {min(trace.samples):.0f} B/s, max {max(trace.samples):.0f} B/s")

    # ------------------------------------------------------------------
    # 1. Score the forecasters on the raw trace.
    # ------------------------------------------------------------------
    predictors = [
        LastValuePredictor(initial=base_bw),
        RunningMeanPredictor(initial=base_bw),
        SlidingMedianPredictor(window=10, initial=base_bw),
        EWMAPredictor(alpha=0.3, initial=base_bw),
        AdaptivePredictor(),
    ]
    scores = evaluate_predictors(trace, predictors)
    print("\none-step-ahead forecast accuracy:")
    for label, score in sorted(
        scores.items(), key=lambda kv: kv[1].mean_absolute_percentage_error
    ):
        print(f"  {label:22s} MAPE {100 * score.mean_absolute_percentage_error:6.2f}%")

    # ------------------------------------------------------------------
    # 2. Propagate one forecast into the paper's network predictor.
    # ------------------------------------------------------------------
    spec = WORKLOADS["knn"]
    dataset = spec.make_dataset("350 MB")
    profile_config = make_run_config(1, 1, bandwidth=base_bw)
    profile_run = FreerideGRuntime(profile_config).execute(
        spec.make_app(), dataset
    )
    profile = Profile.from_run(profile_config, profile_run.breakdown)

    actual_bw = trace.samples[-1]
    ewma = EWMAPredictor(alpha=0.3, initial=base_bw)
    for value in trace.samples[:-1]:
        ewma.observe(value)
    forecast_bw = ewma.predict()

    config = make_run_config(2, 4, bandwidth=base_bw)
    actual = predict_network_time(
        profile,
        PredictionTarget(
            config=config.with_bandwidth(actual_bw),
            dataset_bytes=dataset.nbytes,
        ),
    )
    forecast = predict_network_time(
        profile,
        PredictionTarget(
            config=config.with_bandwidth(forecast_bw),
            dataset_bytes=dataset.nbytes,
        ),
    )
    print(f"\nkNN transfer on 2-4 at the trace's final step:")
    print(f"  actual bandwidth   {actual_bw:10.0f} B/s -> T_network {actual:.4f}s")
    print(f"  EWMA forecast b̂   {forecast_bw:10.0f} B/s -> T̂_network {forecast:.4f}s")
    print(f"  relative error     {abs(forecast - actual) / actual:10.2%}")


if __name__ == "__main__":
    main()
