#!/usr/bin/env python
"""Reproduce any evaluation figure of the paper from the command line.

Usage:
    python examples/reproduce_figure.py fig02            # full 14-config grid
    python examples/reproduce_figure.py fig08 --fast     # reduced grid
    python examples/reproduce_figure.py --list

Figures: fig02-fig06 model comparison, fig07-fig08 dataset scaling,
fig09-fig10 bandwidth, fig11-fig13 cross-cluster.
"""

import argparse
import sys

from repro.analysis import format_experiment
from repro.workloads.experiments import EXPERIMENTS, run_experiment


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("figure", nargs="?", help="figure id, e.g. fig04")
    parser.add_argument(
        "--fast", action="store_true", help="use the reduced config grid"
    )
    parser.add_argument(
        "--list", action="store_true", help="list available figures"
    )
    args = parser.parse_args(argv)

    if args.list or not args.figure:
        for figure_id in sorted(EXPERIMENTS):
            print(figure_id)
        return 0

    result = run_experiment(args.figure, fast=args.fast)
    print(format_experiment(result))
    return 0


if __name__ == "__main__":
    sys.exit(main())
