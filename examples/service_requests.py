#!/usr/bin/env python
"""Prediction-as-a-service: deadlines, breakers, graceful degradation.

The paper's predictor answers one question at a time; a grid broker
needs it as a shared, long-running *service* that stays predictable
when the world is not.  This example drives :mod:`repro.service`
through its whole resilience envelope on simulated time:

1. happy path — fresh predictions, a what-if sweep, campaign status;
2. a crashing backend — the per-(app, cluster) circuit breaker opens
   and requests degrade to fingerprint-keyed last-known-good answers
   marked ``stale: true``;
3. overload — token-bucket admission sheds with 429 + Retry-After
   instead of queueing into deadline misses;
4. a seeded chaos campaign checking the invariants: every accepted
   request settles exactly once, latency respects the deadline, and
   each (seed, spec) pair replays byte-identically.

The same service is reachable over real HTTP::

    repro serve --port 8080
    curl -X POST http://127.0.0.1:8080/v1/predict \
         -d '{"params": {"profile": "kmeans", "data_nodes": 2,
              "compute_nodes": 4}}'

Run:  python examples/service_requests.py
"""

from repro.analysis import format_service_chaos, format_service_metrics
from repro.faults.chaos import ServiceChaosSpec, run_service_campaign
from repro.service import (
    BackendFaultSpec,
    PredictionService,
    ResilienceConfig,
    ServiceBackend,
    ServiceFaultInjector,
    ServiceRequest,
    demo_profiles,
    generate_requests,
    serve_sequence,
)


def show(response) -> None:
    flags = []
    if response.body.get("stale"):
        flags.append(f"stale, age {response.body['stale_age_s']:.3f}s")
    if response.retry_after_s is not None:
        flags.append(f"retry after {response.retry_after_s:.4f}s")
    suffix = f"  [{', '.join(flags)}]" if flags else ""
    total = response.body.get("total")
    recommended = response.body.get("recommended")
    if total is not None:
        shown = f"total {total:.2f}s"
    elif recommended is not None:
        shown = f"recommended {recommended}"
    else:
        shown = response.outcome
    print(
        f"  {response.request_id:<12} {response.status} "
        f"{response.outcome:<14} {shown}{suffix}"
    )


def main() -> None:
    profiles = demo_profiles()

    print("== happy path: fresh answers on simulated time ==")
    service = PredictionService(profiles)
    for request in [
        ServiceRequest("demo-predict", "predict",
                       {"profile": "kmeans", "data_nodes": 2,
                        "compute_nodes": 4}),
        ServiceRequest("demo-whatif", "what-if",
                       {"profile": "apriori",
                        "pairs": [[1, 1], [1, 4], [2, 8]]}),
    ]:
        show(service.handle(request))

    print("\n== crashing backend: the breaker opens, answers go stale ==")
    flaky = PredictionService(profiles)
    warm = ServiceRequest("warm-up", "predict",
                          {"profile": "kmeans", "data_nodes": 1,
                           "compute_nodes": 1})
    show(flaky.handle(warm))  # a healthy answer seeds the cache
    flaky.backend = ServiceBackend(
        injector=ServiceFaultInjector(
            7, BackendFaultSpec(crash_probability=1.0)
        )
    )
    for index in range(4):
        show(flaky.handle(ServiceRequest(
            f"crash-{index}", "predict",
            {"profile": "kmeans", "data_nodes": 1, "compute_nodes": 1},
        )))
    states = flaky.metrics()["breakers"]["states"]
    print(f"  breaker states: {states}")

    print("\n== overload: admission sheds instead of queueing ==")
    config = ResilienceConfig(admission_rate=200.0, admission_burst=16.0)
    loaded = PredictionService(profiles, config=config)
    requests = generate_requests(3, 120, 2000.0, profiles)
    serve_sequence(loaded, requests)
    print(format_service_metrics(loaded.metrics()))

    print("\n== seeded chaos campaign ==")
    spec = ServiceChaosSpec(requests=120, rate_hz=600.0)
    report = run_service_campaign(seeds=range(3), spec=spec)
    print(format_service_chaos(report))


if __name__ == "__main__":
    main()
