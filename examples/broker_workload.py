#!/usr/bin/env python
"""Brokering a job stream with prediction-guided placement.

A 40-job Poisson stream of mixed data-mining jobs arrives at a
two-cluster grid (the paper's Pentium/Myrinet testbed plus an
Opteron/InfiniBand site).  The broker places every job using the
prediction framework — queue wait plus predicted execution time —
under four policies, while an online calibration layer corrects the
model's cross-cluster bias from each completed run.

The same experiment is available from the command line::

    repro broker WORKLOAD.json --report report.json

Run:  python examples/broker_workload.py
"""

from repro.analysis import format_broker, format_error_trend
from repro.broker import GridBroker, parse_workload_document

WORKLOAD = {
    "name": "example-stream",
    "allocations": [[1, 2], [2, 4]],
    "sites": [
        {"name": "repo-a", "kind": "repository",
         "cluster": "pentium-myrinet", "nodes": 16},
        {"name": "hpc-1", "kind": "compute",
         "cluster": "pentium-myrinet", "nodes": 16},
        {"name": "hpc-2", "kind": "compute",
         "cluster": "opteron-infiniband", "nodes": 16},
    ],
    "links": [
        {"a": "repo-a", "b": "hpc-1", "bw": 2.0e6},
        {"a": "repo-a", "b": "hpc-2", "bw": 1.0e6},
    ],
    "stream": {
        "count": 40,
        "seed": 11,
        "mean_interarrival": 0.08,
        "mix": [["kmeans", None, 2.0], ["knn", None, 1.0],
                ["em", None, 1.0]],
        "deadline_fraction": 0.4,
        "deadline_slack": [1.2, 3.0],
        "priorities": [0, 1],
    },
}


def main() -> None:
    doc = parse_workload_document(WORKLOAD)
    broker = GridBroker.from_document(doc)

    print("expanding the seeded stream (deadlines scale off predicted "
          "baselines)...")
    jobs = broker.resolve_jobs(doc)
    with_deadline = sum(1 for j in jobs if j.deadline is not None)
    print(f"  {len(jobs)} jobs, {with_deadline} with deadlines, spanning "
          f"t=0..{max(j.arrival for j in jobs):.2f}s\n")

    report = broker.compare(doc.name, jobs)
    print(format_broker(report))

    calibrated = report.run("min-completion")
    print("\nlearned calibration factors (actual/predicted, EW-averaged):")
    for component, factors in calibrated.calibration_factors.items():
        for key, value in factors.items():
            print(f"  {component:8s} {key:28s} {value:6.3f}")

    print()
    print(format_error_trend(calibrated))
    uncal = report.run("min-completion (uncalibrated)")
    print(
        f"\ncalibration win: mean |err| {100 * calibrated.mean_error():.2f}% "
        f"vs {100 * uncal.mean_error():.2f}% uncalibrated"
    )


if __name__ == "__main__":
    main()
