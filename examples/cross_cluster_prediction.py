#!/usr/bin/env python
"""Predicting execution on hardware you have never profiled on.

Section 3.4 of the paper: measure a few representative applications on
identical configurations on both clusters, average their componentwise
speedups (s_d, s_n, s_c), and rescale a same-cluster prediction.  This
example profiles EM clustering on the simulated 700 MHz Pentium/Myrinet
cluster and predicts its execution on the 2.4 GHz Opteron/InfiniBand
cluster — then validates against actual Opteron executions.

Run:  python examples/cross_cluster_prediction.py
"""

from repro.core import (
    CrossClusterPredictor,
    GlobalReductionModel,
    ModelClasses,
    PredictionTarget,
    Profile,
    measure_scaling_factors,
    relative_error,
)
from repro.middleware import FreerideGRuntime
from repro.workloads import (
    make_run_config,
    opteron_infiniband_cluster,
    pentium_myrinet_cluster,
)
from repro.workloads.registry import WORKLOADS

REPRESENTATIVES = ["kmeans", "knn", "vortex"]  # EM itself is excluded


def main() -> None:
    pentium = pentium_myrinet_cluster()
    opteron = opteron_infiniband_cluster()

    # ------------------------------------------------------------------
    # 1. Component scaling factors from the representative applications.
    # ------------------------------------------------------------------
    pairs = []
    for name in REPRESENTATIVES:
        spec = WORKLOADS[name]
        dataset = spec.make_dataset()
        config_a = make_run_config(2, 4, storage_cluster=pentium)
        run_a = FreerideGRuntime(config_a).execute(spec.make_app(), dataset)
        config_b = make_run_config(2, 4, storage_cluster=opteron)
        run_b = FreerideGRuntime(config_b).execute(spec.make_app(), dataset)
        pairs.append(
            (
                Profile.from_run(config_a, run_a.breakdown),
                Profile.from_run(config_b, run_b.breakdown),
            )
        )
    factors = measure_scaling_factors(pairs)

    print("componentwise scaling factors (Pentium -> Opteron):")
    print(f"  averaged: s_d={factors.sd:.3f}  s_n={factors.sn:.3f}  "
          f"s_c={factors.sc:.3f}")
    for app, (sd, sn, sc) in factors.per_app.items():
        print(f"  {app:8s} s_d={sd:.3f}  s_n={sn:.3f}  s_c={sc:.3f}")
    print("  (the s_c spread across applications is the paper's Section 5.4"
          " observation)")

    # ------------------------------------------------------------------
    # 2. Profile EM on the Pentium cluster, predict on the Opteron one.
    # ------------------------------------------------------------------
    em = WORKLOADS["em"]
    dataset = em.make_dataset("350 MB")
    profile_config = make_run_config(1, 1, storage_cluster=pentium)
    profile_run = FreerideGRuntime(profile_config).execute(
        em.make_app(), dataset
    )
    profile = Profile.from_run(profile_config, profile_run.breakdown)

    base = GlobalReductionModel(
        ModelClasses.parse(em.natural_object_class, em.natural_global_class)
    )
    predictor = CrossClusterPredictor(base, factors)

    print("\nEM on the Opteron cluster, predicted from a Pentium profile:")
    print(f"{'config':>8} {'actual':>10} {'predicted':>10} {'error':>8}")
    for n, c in [(1, 1), (2, 4), (4, 8), (8, 16)]:
        config = make_run_config(n, c, storage_cluster=opteron)
        actual = FreerideGRuntime(config).execute(em.make_app(), dataset)
        target = PredictionTarget(config=config, dataset_bytes=dataset.nbytes)
        predicted = predictor.predict(profile, target)
        err = relative_error(actual.breakdown.total, predicted.total)
        print(f"{config.label:>8} {actual.breakdown.total:9.3f}s "
              f"{predicted.total:9.3f}s {100 * err:7.2f}%")


if __name__ == "__main__":
    main()
