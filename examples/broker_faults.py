#!/usr/bin/env python
"""Brokering through grid weather: outages, WAN rot, flaky jobs.

The same two-cluster grid and seeded job stream as
``examples/broker_workload.py``, but the run is hit by a scenario of
grid-scoped faults: a compute site goes dark mid-stream and is repaired,
a WAN link loses half its bandwidth for a while, and one job's first
execution attempt fails for reasons outside the middleware's model.  The
broker preempts the torn-down attempts, quiesces the lost capacity, and
re-places the work under a checkpoint-aware ``migrate`` recovery policy
that charges :math:`T_{recover}` and re-runs only the unfinished passes.

Afterwards a seeded chaos campaign sweeps randomized fault timelines
over the same stream and checks the resilience invariants: every job
settles exactly once, no reservation overlaps an outage, and each
(seed, scenario) pair replays byte-identically.

The same experiment is available from the command line::

    repro broker WORKLOAD.json --faults scenario.json --recovery migrate

Run:  python examples/broker_faults.py
"""

from repro.analysis import format_broker
from repro.broker import GridBroker, parse_workload_document
from repro.faults import grid_scenario_from_dict
from repro.faults.chaos import ChaosSpec, run_campaign
from repro.workloads.streams import stream_horizon

WORKLOAD = {
    "name": "example-faulted-stream",
    "allocations": [[1, 2], [2, 4]],
    "sites": [
        {"name": "repo-a", "kind": "repository",
         "cluster": "pentium-myrinet", "nodes": 16},
        {"name": "hpc-1", "kind": "compute",
         "cluster": "pentium-myrinet", "nodes": 16},
        {"name": "hpc-2", "kind": "compute",
         "cluster": "opteron-infiniband", "nodes": 16},
    ],
    "links": [
        {"a": "repo-a", "b": "hpc-1", "bw": 2.0e6},
        {"a": "repo-a", "b": "hpc-2", "bw": 1.0e6},
    ],
    "stream": {
        "count": 40,
        "seed": 11,
        "mean_interarrival": 0.08,
        "mix": [["kmeans", None, 2.0], ["knn", None, 1.0],
                ["em", None, 1.0]],
        "deadline_fraction": 0.4,
        "deadline_slack": [1.2, 3.0],
        "priorities": [0, 1],
    },
}

SCENARIO = {
    "recovery": "migrate",
    "retry": {"max_attempts": 3, "base_backoff_s": 0.02},
    "grid_faults": [
        {"type": "site-outage", "site": "hpc-1", "at": 1.0,
         "repair_after": 1.5},
        {"type": "wan-degradation", "a": "repo-a", "b": "hpc-2",
         "factor": 2.0, "at": 0.5, "duration": 2.0},
        {"type": "transient-job-failure", "job": "job0003-kmeans",
         "failures": 1, "at_fraction": 0.6},
    ],
}


def main() -> None:
    doc = parse_workload_document(WORKLOAD)
    broker = GridBroker.from_document(doc)
    jobs = broker.resolve_jobs(doc)
    scenario = grid_scenario_from_dict(SCENARIO)

    print(f"brokering {len(jobs)} jobs through "
          f"{len(scenario.schedule)} scheduled grid faults...\n")
    report = broker.compare(
        doc.name,
        jobs,
        ["min-completion"],
        faults=scenario.schedule,
        recovery=scenario.recovery or "resubmit",
        retry=scenario.retry,
    )
    print(format_broker(report))

    faulted = report.run("min-completion")
    print(
        f"\nresilience: goodput {100 * faulted.goodput:.1f}%, "
        f"{len(faulted.preemptions)} preemption(s), "
        f"{len(faulted.failures)} terminal failure(s), "
        f"recovery charges {faulted.recovery_charge_time:.4f}s"
    )

    print("\nchaos campaign: 5 seeded random timelines, migrate recovery")
    spec = ChaosSpec(horizon=stream_horizon(jobs))
    campaign = run_campaign(
        broker, jobs, seeds=range(5), spec=spec, recovery="migrate"
    )
    for case in campaign.cases:
        print(
            f"  seed {case.seed}: {case.faults} fault(s), "
            f"{case.completed} done, {case.failed} failed, goodput "
            f"{100 * case.goodput:.1f}%, replay "
            f"{'identical' if case.replay_identical else 'DIVERGED'}"
        )
    print(f"invariants: {'all hold' if campaign.ok else campaign.violations}")


if __name__ == "__main__":
    main()
