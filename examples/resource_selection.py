#!/usr/bin/env python
"""Replica + computing-configuration selection on a small grid.

Builds a grid with two repositories holding replicas of the same dataset —
one behind a thin wide-area link — and two compute sites, then uses the
prediction framework to rank every (replica, compute site, node
allocation) candidate, exactly the resource-selection task FREERIDE-G's
middleware performs (Sections 2.1 and 3 of the paper).  Finally, every
candidate is executed for real to show the predicted ranking holds.

Run:  python examples/resource_selection.py
"""

from repro.core import GlobalReductionModel, ModelClasses, Profile
from repro.core.selection import ResourceSelector
from repro.middleware import FreerideGRuntime, ReplicaCatalog
from repro.middleware.scheduler import RunConfig
from repro.simgrid.topology import GridTopology, SiteKind
from repro.workloads import make_app, make_run_config, pentium_myrinet_cluster
from repro.workloads.registry import WORKLOADS


def main() -> None:
    spec = WORKLOADS["em"]
    dataset = spec.make_dataset("350 MB")
    cluster = pentium_myrinet_cluster()

    # ------------------------------------------------------------------
    # 1. The grid: two replicas, two compute sites, asymmetric links.
    # ------------------------------------------------------------------
    topo = GridTopology()
    topo.add_site("repo-campus", SiteKind.REPOSITORY, cluster)
    topo.add_site("repo-remote", SiteKind.REPOSITORY, cluster)
    topo.add_site("hpc-large", SiteKind.COMPUTE, cluster)
    topo.add_site("hpc-small", SiteKind.COMPUTE, pentium_myrinet_cluster(num_nodes=8))
    topo.connect("repo-campus", "hpc-large", bw=2.0e6)
    topo.connect("repo-campus", "hpc-small", bw=2.0e6)
    topo.connect("repo-remote", "hpc-large", bw=3.0e5)  # thin WAN link

    catalog = ReplicaCatalog(topo)
    catalog.add(dataset.name, "repo-campus")
    catalog.add(dataset.name, "repo-remote")

    # ------------------------------------------------------------------
    # 2. One profile run, then rank all candidates.
    # ------------------------------------------------------------------
    profile_config = make_run_config(1, 1)
    profile_run = FreerideGRuntime(profile_config).execute(
        spec.make_app(), dataset
    )
    profile = Profile.from_run(profile_config, profile_run.breakdown)
    model = GlobalReductionModel(
        ModelClasses.parse(spec.natural_object_class, spec.natural_global_class)
    )

    allocations = [(1, 1), (2, 4), (4, 8), (8, 16)]
    selector = ResourceSelector(topo, catalog, model, allocations)
    outcome = selector.select(dataset.name, dataset.nbytes, profile)

    # ------------------------------------------------------------------
    # 3. Execute every candidate for real and compare.
    # ------------------------------------------------------------------
    print(f"{'rank':>4} {'candidate':>34} {'bw (B/s)':>10} "
          f"{'predicted':>10} {'actual':>10}")
    for rank, cand in enumerate(outcome, start=1):
        config = RunConfig(
            storage_cluster=topo.site(cand.replica_site).cluster,
            compute_cluster=topo.site(cand.compute_site).cluster,
            data_nodes=cand.data_nodes,
            compute_nodes=cand.compute_nodes,
            bandwidth=cand.bandwidth,
        )
        actual = FreerideGRuntime(config).execute(spec.make_app(), dataset)
        print(
            f"{rank:>4} {cand.label:>34} {cand.bandwidth:10.0f} "
            f"{cand.predicted_total:9.3f}s {actual.breakdown.total:9.3f}s"
        )

    best = outcome.best
    print(f"\nselected: replica at {best.replica_site}, "
          f"{best.data_nodes} data nodes -> {best.compute_site} with "
          f"{best.compute_nodes} compute nodes")


if __name__ == "__main__":
    main()
